// Binary codecs for the online accumulators. Sharded benchmark runs ship
// per-shard Welford/Sketch state across process (and host) boundaries as
// blobs; the wire format follows the service snapshot conventions
// (internal/service/snapshot.go): little-endian, a 4-byte magic, a u16
// format version, fixed-width fields, and a trailing CRC32-IEEE over
// every preceding byte, so any torn or bit-rotted blob decodes to a clean
// error instead of a silently wrong accumulator.
//
// Both codecs are canonical: decode followed by encode reproduces the
// input bytes, and an encoded sketch restored on another host continues
// its stream bit-identically (the reservoir RNG is persisted as a draw
// cursor and fast-forwarded on decode).

package stats

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"math/rand"
)

const (
	welfordMagic   = "UWWF"
	welfordVersion = 1
	sketchMagic    = "UWSK"
	sketchVersion  = 1
)

// MarshalBinary encodes the accumulator:
//
//	offset  size  field
//	0       4     magic "UWWF"
//	4       2     format version (u16)
//	6       8     observation count (i64)
//	14      8     mean, IEEE-754 bits (u64)
//	22      8     M2, IEEE-754 bits (u64)
//	30      4     CRC32-IEEE over every preceding byte (u32)
func (w *Welford) MarshalBinary() ([]byte, error) {
	b := make([]byte, 0, 34)
	b = append(b, welfordMagic...)
	b = binary.LittleEndian.AppendUint16(b, welfordVersion)
	b = binary.LittleEndian.AppendUint64(b, uint64(w.n))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(w.mean))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(w.m2))
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b)), nil
}

// UnmarshalBinary restores an accumulator encoded by MarshalBinary,
// rejecting any truncation, corruption, or unknown version.
func (w *Welford) UnmarshalBinary(data []byte) error {
	r, err := openBlob(welfordMagic, welfordVersion, data)
	if err != nil {
		return err
	}
	n := int64(r.u64())
	mean := math.Float64frombits(r.u64())
	m2 := math.Float64frombits(r.u64())
	if err := r.close(); err != nil {
		return err
	}
	w.n, w.mean, w.m2 = n, mean, m2
	return nil
}

// MarshalBinary encodes the sketch:
//
//	offset  size  field
//	0       4     magic "UWSK"
//	4       2     format version (u16)
//	6       4     capacity (u32)
//	10      8     observation count (i64)
//	18      8     Welford mean, IEEE-754 bits (u64)
//	26      8     Welford M2, IEEE-754 bits (u64)
//	34      8     reservoir RNG draw cursor (u64)
//	42      4     retained-value count (u32), then that many f64 bit patterns
//	..      4     CRC32-IEEE over every preceding byte (u32)
func (s *Sketch) MarshalBinary() ([]byte, error) {
	b := make([]byte, 0, 50+8*len(s.vals))
	b = append(b, sketchMagic...)
	b = binary.LittleEndian.AppendUint16(b, sketchVersion)
	b = binary.LittleEndian.AppendUint32(b, uint32(s.cap))
	b = binary.LittleEndian.AppendUint64(b, uint64(s.w.n))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(s.w.mean))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(s.w.m2))
	var draws uint64
	if s.src != nil {
		draws = s.src.draws
	}
	b = binary.LittleEndian.AppendUint64(b, draws)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s.vals)))
	for _, v := range s.vals {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b)), nil
}

// UnmarshalBinary restores a sketch encoded by MarshalBinary. The
// reservoir RNG is rebuilt from the canonical seed and fast-forwarded by
// the recorded draw cursor, so the restored sketch continues its stream
// bit-identically to the original.
func (s *Sketch) UnmarshalBinary(data []byte) error {
	r, err := openBlob(sketchMagic, sketchVersion, data)
	if err != nil {
		return err
	}
	capacity := int(r.u32())
	n := int64(r.u64())
	mean := math.Float64frombits(r.u64())
	m2 := math.Float64frombits(r.u64())
	draws := r.u64()
	count := int(r.u32())
	if r.err == nil && count > r.remaining()/8 {
		return fmt.Errorf("stats: sketch blob claims %d values in %d bytes", count, r.remaining())
	}
	vals := make([]float64, count)
	for i := range vals {
		vals[i] = math.Float64frombits(r.u64())
	}
	if err := r.close(); err != nil {
		return err
	}
	if capacity < 2 || count > capacity || int64(count) > n {
		return fmt.Errorf("stats: inconsistent sketch blob (cap %d, %d values, n %d)", capacity, count, n)
	}
	*s = Sketch{cap: capacity, vals: vals, w: Welford{n: n, mean: mean, m2: m2}}
	if draws > 0 {
		s.src = newSketchSource(draws)
		s.rng = rand.New(s.src)
	}
	return nil
}

// blobReader walks a framed blob with bounds checking after the magic and
// version have been verified and the checksum stripped; a single error
// flag keeps call sites linear (the snapReader pattern).
type blobReader struct {
	b   []byte
	err error
}

// openBlob verifies framing (magic, version, trailing CRC32) and returns
// a reader positioned after the version field.
func openBlob(magic string, version uint16, data []byte) (*blobReader, error) {
	if len(data) < len(magic)+6 {
		return nil, fmt.Errorf("stats: %s blob too short (%d bytes)", magic, len(data))
	}
	if string(data[:4]) != magic {
		return nil, fmt.Errorf("stats: bad blob magic %q (want %s)", data[:4], magic)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if got, want := binary.LittleEndian.Uint32(tail), crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("stats: %s blob checksum mismatch (%08x != %08x)", magic, got, want)
	}
	if v := binary.LittleEndian.Uint16(body[4:6]); v != version {
		return nil, fmt.Errorf("stats: unsupported %s blob version %d", magic, v)
	}
	return &blobReader{b: body[6:]}, nil
}

func (r *blobReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.b) < n {
		r.err = fmt.Errorf("stats: blob truncated (%d bytes short)", n-len(r.b))
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

func (r *blobReader) u32() uint32 { return binary.LittleEndian.Uint32(padBlob(r.take(4), 4)) }
func (r *blobReader) u64() uint64 { return binary.LittleEndian.Uint64(padBlob(r.take(8), 8)) }

func (r *blobReader) remaining() int { return len(r.b) }

// close finishes a decode: any pending read error or trailing garbage is
// a corrupt blob.
func (r *blobReader) close() error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return fmt.Errorf("stats: %d trailing bytes after blob", len(r.b))
	}
	return nil
}

// padBlob keeps the fixed-width readers branch-free after a short take.
func padBlob(b []byte, n int) []byte {
	if len(b) == n {
		return b
	}
	return make([]byte, n)
}
