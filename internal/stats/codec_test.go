package stats

import (
	"bytes"
	"hash/crc32"
	"math"
	"math/rand"
	"testing"
)

// trialStream produces a deterministic pseudo-random value stream for
// merge/codec tests without touching the sketch's own RNG.
func trialStream(seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64()*3 + 10
	}
	return out
}

// splitPoints cuts n into k contiguous spans the way the shard planner
// does: span i is [n*i/k, n*(i+1)/k).
func splitSpans(n, k int) [][2]int {
	spans := make([][2]int, k)
	for i := 0; i < k; i++ {
		spans[i] = [2]int{n * i / k, n * (i + 1) / k}
	}
	return spans
}

func sketchStateEqual(t *testing.T, got, want *Sketch) {
	t.Helper()
	if got.w != want.w {
		t.Fatalf("welford state differs: %+v != %+v", got.w, want.w)
	}
	gv, wv := got.Values(), want.Values()
	if len(gv) != len(wv) {
		t.Fatalf("retained %d values, want %d", len(gv), len(wv))
	}
	for i := range gv {
		if math.Float64bits(gv[i]) != math.Float64bits(wv[i]) {
			t.Fatalf("value %d: %v != %v", i, gv[i], wv[i])
		}
	}
	var gd, wd uint64
	if got.src != nil {
		gd = got.src.draws
	}
	if want.src != nil {
		wd = want.src.draws
	}
	if gd != wd {
		t.Fatalf("rng cursor %d, want %d", gd, wd)
	}
}

// Merging exact shard sketches in shard-index order must reproduce the
// single-stream sketch bit for bit — state, quantiles, moments, and the
// continuation after further Adds — at any shard count, including when
// the merged total crosses the exact threshold.
func TestSketchMergeExactShardsBitIdentical(t *testing.T) {
	for _, tc := range []struct {
		name   string
		capac  int
		n      int
		shards int
	}{
		{"exact-total", 256, 200, 4},
		{"crosses-threshold", 64, 200, 4},
		{"far-past-threshold", 32, 500, 20},
		{"single-shard", 64, 60, 1},
		{"more-shards-than-trials", 64, 3, 5},
		{"two-values-cap", 2, 6, 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			stream := trialStream(42, tc.n)

			single := NewSketchSize(tc.capac)
			for _, v := range stream {
				single.Add(v)
			}

			merged := NewSketchSize(tc.capac)
			for _, span := range splitSpans(tc.n, tc.shards) {
				shard := NewSketchSize(tc.capac)
				for _, v := range stream[span[0]:span[1]] {
					shard.Add(v)
				}
				if !shard.Exact() {
					t.Fatalf("shard left exact mode; tc sized wrong")
				}
				merged.Merge(shard)
			}

			sketchStateEqual(t, merged, single)
			for _, p := range []float64{0, 25, 50, 95, 100} {
				if math.Float64bits(merged.Quantile(p)) != math.Float64bits(single.Quantile(p)) {
					t.Fatalf("p%v: %v != %v", p, merged.Quantile(p), single.Quantile(p))
				}
			}
			// The merged sketch must continue the stream identically too.
			for _, v := range trialStream(7, 100) {
				single.Add(v)
				merged.Add(v)
			}
			sketchStateEqual(t, merged, single)
		})
	}
}

// Random split boundaries (not just even spans) must also fold back
// bit-identically — the property the shard planner relies on is purely
// "concatenation of exact sub-streams", not any particular split shape.
func TestSketchMergeRandomSplitsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 50; iter++ {
		n := 1 + rng.Intn(300)
		capac := 2 + rng.Intn(100)
		stream := trialStream(int64(iter), n)

		single := NewSketchSize(capac)
		for _, v := range stream {
			single.Add(v)
		}

		merged := NewSketchSize(capac)
		for lo := 0; lo < n; {
			hi := lo + 1 + rng.Intn(n-lo)
			shard := NewSketchSize(capac)
			for _, v := range stream[lo:hi] {
				shard.Add(v)
			}
			if shard.Exact() {
				merged.Merge(shard)
			} else {
				// Oversized cut: replay directly so the property under test
				// stays "exact shards fold bit-identically".
				for _, v := range stream[lo:hi] {
					merged.Add(v)
				}
			}
			lo = hi
		}
		sketchStateEqual(t, merged, single)
	}
}

// Merging into a fresh sketch adopts the source state exactly.
func TestSketchMergeIntoEmpty(t *testing.T) {
	src := NewSketchSize(32)
	for _, v := range trialStream(3, 20) {
		src.Add(v)
	}
	dst := NewSketchSize(32)
	dst.Merge(src)
	sketchStateEqual(t, dst, src)

	dst2 := NewSketchSize(32)
	dst2.Merge(nil)
	dst2.Merge(NewSketchSize(32))
	if dst2.Count() != 0 {
		t.Fatalf("merging nil/empty changed count to %d", dst2.Count())
	}
}

// Non-exact source sketches can no longer replay their full stream; the
// merge must still be deterministic, preserve exact moments, and keep
// quantile error in the same band as a single reservoir of equal
// capacity.
func TestSketchMergeReservoirTolerance(t *testing.T) {
	const capac = 512
	const n = 20000
	stream := trialStream(11, 2*n)

	build := func() *Sketch {
		a := NewSketchSize(capac)
		b := NewSketchSize(capac)
		for _, v := range stream[:n] {
			a.Add(v)
		}
		for _, v := range stream[n:] {
			b.Add(v)
		}
		a.Merge(b)
		return a
	}
	m1, m2 := build(), build()
	sketchStateEqual(t, m1, m2) // deterministic: pure function of inputs

	single := NewSketchSize(capac)
	exact := NewSketchSize(len(stream))
	for _, v := range stream {
		single.Add(v)
		exact.Add(v)
	}
	if m1.Count() != int64(len(stream)) {
		t.Fatalf("count %d, want %d", m1.Count(), len(stream))
	}
	// Moments are exact (Chan merge), not estimates.
	if math.Abs(m1.Mean()-exact.Mean()) > 1e-9 {
		t.Fatalf("mean %v, want %v", m1.Mean(), exact.Mean())
	}
	if math.Abs(m1.Std()-exact.Std()) > 1e-9 {
		t.Fatalf("std %v, want %v", m1.Std(), exact.Std())
	}
	// Quantiles: reservoir estimate. With cap 512 the standard error of a
	// quantile estimate is a few percentage points of rank; compare against
	// the truth and against what a single same-capacity reservoir achieves.
	for _, p := range []float64{10, 50, 90} {
		truth := exact.Quantile(p)
		if got := m1.Quantile(p); math.Abs(got-truth) > 1.0 {
			t.Fatalf("p%v after merge: %v, truth %v (stream std 3)", p, got, truth)
		}
		if got := single.Quantile(p); math.Abs(got-truth) > 1.0 {
			t.Fatalf("p%v single reservoir drifted: %v vs %v", p, got, truth)
		}
	}
	if len(m1.Values()) != capac {
		t.Fatalf("merged reservoir holds %d values, want %d", len(m1.Values()), capac)
	}
}

// Round-trip: decode(encode(x)) restores identical state, and the codec
// is canonical — re-encoding reproduces the input bytes.
func TestWelfordCodecRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 5, 1000} {
		var w Welford
		for _, v := range trialStream(5, n) {
			w.Add(v)
		}
		blob, err := w.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var got Welford
		if err := got.UnmarshalBinary(blob); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if got != w {
			t.Fatalf("round trip: %+v != %+v", got, w)
		}
		re, _ := got.MarshalBinary()
		if !bytes.Equal(re, blob) {
			t.Fatalf("re-encode not canonical")
		}
	}
}

func TestSketchCodecRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name  string
		capac int
		n     int
	}{
		{"empty", 64, 0},
		{"exact", 64, 30},
		{"at-threshold", 64, 64},
		{"reservoir", 64, 500},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := NewSketchSize(tc.capac)
			for _, v := range trialStream(9, tc.n) {
				s.Add(v)
			}
			blob, err := s.MarshalBinary()
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			got := new(Sketch)
			if err := got.UnmarshalBinary(blob); err != nil {
				t.Fatalf("unmarshal: %v", err)
			}
			sketchStateEqual(t, got, s)
			re, _ := got.MarshalBinary()
			if !bytes.Equal(re, blob) {
				t.Fatalf("re-encode not canonical")
			}
			// The restored sketch continues the stream bit-identically,
			// including reservoir decisions driven by the restored RNG cursor.
			for _, v := range trialStream(13, 200) {
				s.Add(v)
				got.Add(v)
			}
			sketchStateEqual(t, got, s)
		})
	}
}

// Corruption matrix mirroring service/persist_test.go: every damaged
// variant of a valid blob must fail decode, never yield silent garbage.
func TestCodecCorruptionMatrix(t *testing.T) {
	var w Welford
	s := NewSketchSize(16)
	for _, v := range trialStream(21, 40) {
		w.Add(v)
		s.Add(v)
	}
	wb, _ := w.MarshalBinary()
	sb, _ := s.MarshalBinary()

	for _, tc := range []struct {
		name   string
		decode func([]byte) error
		blob   []byte
	}{
		{"welford", func(b []byte) error { var x Welford; return x.UnmarshalBinary(b) }, wb},
		{"sketch", func(b []byte) error { var x Sketch; return x.UnmarshalBinary(b) }, sb},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.decode(tc.blob); err != nil {
				t.Fatalf("pristine blob failed: %v", err)
			}
			variants := map[string][]byte{
				"empty":     {},
				"too-short": tc.blob[:5],
				"truncated": tc.blob[:len(tc.blob)-3],
				"trailing":  append(append([]byte(nil), tc.blob...), 0),
				"bad-magic": append([]byte("XXXX"), tc.blob[4:]...),
			}
			for _, off := range []int{0, 4, 5, 9, len(tc.blob) / 2, len(tc.blob) - 1} {
				flipped := append([]byte(nil), tc.blob...)
				flipped[off] ^= 0x40
				variants[("bit-flip-" + string(rune('a'+off%26)))] = flipped
			}
			// Version bump with a recomputed (valid) checksum must still fail.
			bumped := append([]byte(nil), tc.blob...)
			bumped[4] = 0x7f
			body := bumped[:len(bumped)-4]
			reseal(body, bumped)
			variants["future-version"] = bumped

			for name, blob := range variants {
				if err := tc.decode(blob); err == nil {
					t.Errorf("%s: corrupt blob decoded cleanly", name)
				}
			}
		})
	}
}

// reseal recomputes the trailing CRC over body into the last 4 bytes of
// blob, for crafting structurally-valid-but-semantically-bad test blobs.
func reseal(body, blob []byte) {
	c := crc32.ChecksumIEEE(body)
	blob[len(blob)-4] = byte(c)
	blob[len(blob)-3] = byte(c >> 8)
	blob[len(blob)-2] = byte(c >> 16)
	blob[len(blob)-1] = byte(c >> 24)
}

// Internally-inconsistent but well-framed sketch blobs must be rejected.
func TestSketchCodecRejectsInconsistentFields(t *testing.T) {
	s := NewSketchSize(16)
	for _, v := range trialStream(2, 10) {
		s.Add(v)
	}
	blob, _ := s.MarshalBinary()

	corruptField := func(mutate func(b []byte)) []byte {
		b := append([]byte(nil), blob...)
		mutate(b)
		reseal(b[:len(b)-4], b)
		return b
	}
	cases := map[string][]byte{
		// cap 0 (< 2) is never produced by NewSketchSize.
		"zero-cap": corruptField(func(b []byte) { b[6], b[7], b[8], b[9] = 0, 0, 0, 0 }),
		// n below the retained count is impossible.
		"count-exceeds-n": corruptField(func(b []byte) {
			b[10], b[11], b[12], b[13], b[14], b[15], b[16], b[17] = 1, 0, 0, 0, 0, 0, 0, 0
		}),
		// retained count larger than the payload can hold.
		"huge-count": corruptField(func(b []byte) { b[42], b[43], b[44], b[45] = 0xff, 0xff, 0xff, 0x7f }),
	}
	for name, b := range cases {
		var x Sketch
		if err := x.UnmarshalBinary(b); err == nil {
			t.Errorf("%s: inconsistent blob decoded cleanly", name)
		}
	}
}
