// Online (streaming) aggregation. The paper's figures are distribution
// summaries — medians, 95th percentiles, error CDFs — over thousands of
// Monte-Carlo trials. Collect-then-Percentile pins every trial result in
// memory until the run ends; the types here consume results one at a time
// from an engine.Stream sink, so trial counts scale past memory while the
// summaries stay exact (Welford) or boundedly approximate (Sketch beyond
// its exact threshold).

package stats

import (
	"math"
	"math/rand"
)

// Welford is an online mean/variance accumulator (Welford's algorithm):
// O(1) memory, numerically stable, exact mean and sample variance for any
// stream length. The zero value is ready to use. Results depend on
// insertion order only through floating-point rounding; feed it from an
// order-deterministic source (engine.StreamOrdered, or any serial loop)
// when bit-reproducibility across worker counts matters.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add consumes one observation.
func (w *Welford) Add(v float64) {
	w.n++
	d := v - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (v - w.mean)
}

// Count returns the number of observations.
func (w *Welford) Count() int64 { return w.n }

// Mean returns the running mean (NaN for an empty accumulator).
func (w *Welford) Mean() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.mean
}

// Var returns the running sample variance (NaN for n < 2).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return math.NaN()
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the running sample standard deviation (NaN for n < 2).
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Merge folds another accumulator into w (Chan et al. parallel update),
// for combining per-shard accumulators.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.mean += d * float64(o.n) / float64(n)
	w.n = n
}

// DefaultSketchSize is the exact-mode threshold and reservoir capacity of
// NewSketch. Default experiment trial counts sit far below it, so figure
// outputs computed through a Sketch are bit-identical to the legacy
// collect-then-Percentile path; past the threshold memory stays fixed and
// quantiles become reservoir estimates.
const DefaultSketchSize = 8192

// sketchSeed seeds every reservoir identically, so a Sketch is a pure
// function of its insertion sequence (no global randomness).
const sketchSeed = 0x5ce7c4a1d

// countingSource wraps the reservoir RNG source and counts every draw it
// hands out. The count is what makes a Sketch serializable past the exact
// threshold: reservoir replacement consumes a history-dependent number of
// draws (Int63n rejection-samples), so the RNG cursor — not the RNG
// struct — is the portable state, exactly like the simulator's
// countingSource in the session snapshots. UnmarshalBinary rebuilds the
// source and fast-forwards it by the recorded count.
type countingSource struct {
	src   rand.Source64
	draws uint64
}

func (c *countingSource) Int63() int64 {
	c.draws++
	return c.src.Int63()
}

func (c *countingSource) Uint64() uint64 {
	c.draws++
	return c.src.Uint64()
}

func (c *countingSource) Seed(s int64) { c.src.Seed(s) }

// newSketchSource builds the canonical reservoir source fast-forwarded by
// draws steps.
func newSketchSource(draws uint64) *countingSource {
	c := &countingSource{src: rand.NewSource(sketchSeed).(rand.Source64)}
	for i := uint64(0); i < draws; i++ {
		c.src.Int63()
	}
	c.draws = draws
	return c
}

// Sketch is a fixed-memory streaming quantile summary with an exact-mode
// fallback: up to its capacity it retains every value and answers
// quantiles exactly (matching Percentile bit for bit); beyond it, it
// degrades to uniform reservoir sampling (Vitter's algorithm R), keeping
// an unbiased fixed-size sample whose quantile error shrinks with
// capacity. Mean and standard deviation are exact at any count: two-pass
// over the retained values in exact mode, Welford beyond.
//
// A Sketch is deterministic given its insertion order; deliver from
// engine.StreamOrdered to keep results identical across worker counts.
// Not safe for concurrent use (engine sinks are serialized).
type Sketch struct {
	cap  int
	vals []float64
	w    Welford
	rng  *rand.Rand
	src  *countingSource
}

// NewSketch returns a Sketch with DefaultSketchSize capacity.
func NewSketch() *Sketch { return NewSketchSize(DefaultSketchSize) }

// NewSketchSize returns a Sketch retaining at most capacity values.
// capacity < 2 is raised to 2.
func NewSketchSize(capacity int) *Sketch {
	if capacity < 2 {
		capacity = 2
	}
	return &Sketch{cap: capacity}
}

// Reserve preallocates the sketch's retained-value storage to its full
// capacity and pre-creates the reservoir RNG, so every subsequent Add is
// allocation-free — required by consumers inside allocation-gated steady
// states (the ingest deadline meter). Reserving changes no result: the
// value sequence is unaffected and the RNG is deterministic and only
// consulted past the exact-mode threshold regardless of when it was
// created.
func (s *Sketch) Reserve() {
	if cap(s.vals) < s.cap {
		vals := make([]float64, len(s.vals), s.cap)
		copy(vals, s.vals)
		s.vals = vals
	}
	s.ensureRNG()
}

// ensureRNG lazily builds the deterministic reservoir RNG. The counting
// wrapper changes no drawn value — the underlying source is the same —
// it only records the cursor the codec needs.
func (s *Sketch) ensureRNG() {
	if s.rng == nil {
		s.src = newSketchSource(0)
		s.rng = rand.New(s.src)
	}
}

// Add consumes one observation.
func (s *Sketch) Add(v float64) {
	s.w.Add(v)
	if len(s.vals) < s.cap {
		s.vals = append(s.vals, v)
		return
	}
	// Reservoir replacement: observation n survives with probability cap/n.
	s.ensureRNG()
	if j := s.rng.Int63n(s.w.n); j < int64(s.cap) {
		s.vals[j] = v
	}
}

// Count returns the number of observations consumed.
func (s *Sketch) Count() int64 { return s.w.n }

// Exact reports whether every observation is still retained, i.e. whether
// Quantile answers are exact rather than reservoir estimates.
func (s *Sketch) Exact() bool { return s.w.n <= int64(s.cap) }

// Quantile returns the p-th percentile (0–100) of the stream: exact in
// exact mode, a reservoir estimate beyond. NaN for an empty sketch.
func (s *Sketch) Quantile(p float64) float64 {
	qs := s.Quantiles(p)
	return qs[0]
}

// Quantiles returns several percentiles with a single sort of the retained
// sample (the streaming analogue of Summaries).
func (s *Sketch) Quantiles(ps ...float64) []float64 {
	return Summaries(s.vals, ps...)
}

// Mean returns the stream mean: in exact mode the two-pass mean of the
// retained values (bit-identical to Mean over the collected slice),
// otherwise the Welford running mean over all observations.
func (s *Sketch) Mean() float64 {
	if s.Exact() {
		return Mean(s.vals)
	}
	return s.w.Mean()
}

// Std returns the stream sample standard deviation, exact at any count
// (two-pass in exact mode, Welford beyond).
func (s *Sketch) Std() float64 {
	if s.Exact() {
		return Std(s.vals)
	}
	return s.w.Std()
}

// Values returns a copy of the retained sample in insertion order: the
// complete series in exact mode, the current reservoir beyond. Callers
// that need the raw series (tests, benches, CDF plots) read it from here;
// its size is bounded by the sketch capacity regardless of stream length.
func (s *Sketch) Values() []float64 {
	return append([]float64(nil), s.vals...)
}

// Merge folds o into s with insertion-order semantics: o's observations
// are treated as arriving after every observation s has already consumed.
// Folding per-shard sketches into shard 0's sketch in shard-index order
// therefore reconstructs the single-stream sketch.
//
// While o is exact (it still retains every observation it consumed, i.e.
// each shard saw at most the sketch capacity), the merge literally
// replays o's stream through s.Add, so the result — retained values,
// Welford state, reservoir RNG cursor, every downstream quantile and
// moment — is bit-for-bit identical to one sketch having consumed the
// concatenated stream, even if s itself has already left exact mode.
// This is the regime the sharded-benchmark pipeline guarantees.
//
// If o has left exact mode its unretained observations are gone, so the
// merge degrades gracefully: moments merge exactly by count (Chan et al.,
// via Welford.Merge) and the reservoirs combine by a deterministic
// count-weighted resample driven by s's reservoir RNG. The result is
// still a pure function of the two sketches' states — identical on every
// host — but quantiles are estimates with error comparable to a single
// reservoir of the same capacity (see the merge tolerance tests).
func (s *Sketch) Merge(o *Sketch) {
	if o == nil || o.w.n == 0 {
		return
	}
	if o.Exact() {
		for _, v := range o.vals {
			s.Add(v)
		}
		return
	}
	s.ensureRNG()
	na, nb := s.w.n, o.w.n
	s.w.Merge(o.w)
	a := append([]float64(nil), s.vals...)
	b := append([]float64(nil), o.vals...)
	// Count-weighted resample without replacement: each retained value
	// stands for count/len(reservoir) observations of its stream.
	wa, wb := float64(na), float64(nb)
	var stepA, stepB float64
	if len(a) > 0 {
		stepA = wa / float64(len(a))
	}
	if len(b) > 0 {
		stepB = wb / float64(len(b))
	}
	out := make([]float64, 0, s.cap)
	for len(out) < s.cap && (len(a) > 0 || len(b) > 0) {
		takeA := len(b) == 0 || (len(a) > 0 && s.rng.Float64()*(wa+wb) < wa)
		if takeA {
			i := s.rng.Intn(len(a))
			out = append(out, a[i])
			a[i] = a[len(a)-1]
			a = a[:len(a)-1]
			wa -= stepA
		} else {
			i := s.rng.Intn(len(b))
			out = append(out, b[i])
			b[i] = b[len(b)-1]
			b = b[:len(b)-1]
			wb -= stepB
		}
	}
	s.vals = out
}
