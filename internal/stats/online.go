// Online (streaming) aggregation. The paper's figures are distribution
// summaries — medians, 95th percentiles, error CDFs — over thousands of
// Monte-Carlo trials. Collect-then-Percentile pins every trial result in
// memory until the run ends; the types here consume results one at a time
// from an engine.Stream sink, so trial counts scale past memory while the
// summaries stay exact (Welford) or boundedly approximate (Sketch beyond
// its exact threshold).

package stats

import (
	"math"
	"math/rand"
)

// Welford is an online mean/variance accumulator (Welford's algorithm):
// O(1) memory, numerically stable, exact mean and sample variance for any
// stream length. The zero value is ready to use. Results depend on
// insertion order only through floating-point rounding; feed it from an
// order-deterministic source (engine.StreamOrdered, or any serial loop)
// when bit-reproducibility across worker counts matters.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add consumes one observation.
func (w *Welford) Add(v float64) {
	w.n++
	d := v - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (v - w.mean)
}

// Count returns the number of observations.
func (w *Welford) Count() int64 { return w.n }

// Mean returns the running mean (NaN for an empty accumulator).
func (w *Welford) Mean() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.mean
}

// Var returns the running sample variance (NaN for n < 2).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return math.NaN()
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the running sample standard deviation (NaN for n < 2).
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Merge folds another accumulator into w (Chan et al. parallel update),
// for combining per-shard accumulators.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.mean += d * float64(o.n) / float64(n)
	w.n = n
}

// DefaultSketchSize is the exact-mode threshold and reservoir capacity of
// NewSketch. Default experiment trial counts sit far below it, so figure
// outputs computed through a Sketch are bit-identical to the legacy
// collect-then-Percentile path; past the threshold memory stays fixed and
// quantiles become reservoir estimates.
const DefaultSketchSize = 8192

// sketchSeed seeds every reservoir identically, so a Sketch is a pure
// function of its insertion sequence (no global randomness).
const sketchSeed = 0x5ce7c4a1d

// Sketch is a fixed-memory streaming quantile summary with an exact-mode
// fallback: up to its capacity it retains every value and answers
// quantiles exactly (matching Percentile bit for bit); beyond it, it
// degrades to uniform reservoir sampling (Vitter's algorithm R), keeping
// an unbiased fixed-size sample whose quantile error shrinks with
// capacity. Mean and standard deviation are exact at any count: two-pass
// over the retained values in exact mode, Welford beyond.
//
// A Sketch is deterministic given its insertion order; deliver from
// engine.StreamOrdered to keep results identical across worker counts.
// Not safe for concurrent use (engine sinks are serialized).
type Sketch struct {
	cap  int
	vals []float64
	w    Welford
	rng  *rand.Rand
}

// NewSketch returns a Sketch with DefaultSketchSize capacity.
func NewSketch() *Sketch { return NewSketchSize(DefaultSketchSize) }

// NewSketchSize returns a Sketch retaining at most capacity values.
// capacity < 2 is raised to 2.
func NewSketchSize(capacity int) *Sketch {
	if capacity < 2 {
		capacity = 2
	}
	return &Sketch{cap: capacity}
}

// Reserve preallocates the sketch's retained-value storage to its full
// capacity and pre-creates the reservoir RNG, so every subsequent Add is
// allocation-free — required by consumers inside allocation-gated steady
// states (the ingest deadline meter). Reserving changes no result: the
// value sequence is unaffected and the RNG is deterministic and only
// consulted past the exact-mode threshold regardless of when it was
// created.
func (s *Sketch) Reserve() {
	if cap(s.vals) < s.cap {
		vals := make([]float64, len(s.vals), s.cap)
		copy(vals, s.vals)
		s.vals = vals
	}
	if s.rng == nil {
		s.rng = rand.New(rand.NewSource(sketchSeed))
	}
}

// Add consumes one observation.
func (s *Sketch) Add(v float64) {
	s.w.Add(v)
	if len(s.vals) < s.cap {
		s.vals = append(s.vals, v)
		return
	}
	// Reservoir replacement: observation n survives with probability cap/n.
	if s.rng == nil {
		s.rng = rand.New(rand.NewSource(sketchSeed))
	}
	if j := s.rng.Int63n(s.w.n); j < int64(s.cap) {
		s.vals[j] = v
	}
}

// Count returns the number of observations consumed.
func (s *Sketch) Count() int64 { return s.w.n }

// Exact reports whether every observation is still retained, i.e. whether
// Quantile answers are exact rather than reservoir estimates.
func (s *Sketch) Exact() bool { return s.w.n <= int64(s.cap) }

// Quantile returns the p-th percentile (0–100) of the stream: exact in
// exact mode, a reservoir estimate beyond. NaN for an empty sketch.
func (s *Sketch) Quantile(p float64) float64 {
	qs := s.Quantiles(p)
	return qs[0]
}

// Quantiles returns several percentiles with a single sort of the retained
// sample (the streaming analogue of Summaries).
func (s *Sketch) Quantiles(ps ...float64) []float64 {
	return Summaries(s.vals, ps...)
}

// Mean returns the stream mean: in exact mode the two-pass mean of the
// retained values (bit-identical to Mean over the collected slice),
// otherwise the Welford running mean over all observations.
func (s *Sketch) Mean() float64 {
	if s.Exact() {
		return Mean(s.vals)
	}
	return s.w.Mean()
}

// Std returns the stream sample standard deviation, exact at any count
// (two-pass in exact mode, Welford beyond).
func (s *Sketch) Std() float64 {
	if s.Exact() {
		return Std(s.vals)
	}
	return s.w.Std()
}

// Values returns a copy of the retained sample in insertion order: the
// complete series in exact mode, the current reservoir beyond. Callers
// that need the raw series (tests, benches, CDF plots) read it from here;
// its size is bounded by the sketch capacity regardless of stream length.
func (s *Sketch) Values() []float64 {
	return append([]float64(nil), s.vals...)
}
