package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestWelfordMatchesTwoPass(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 1000)
	var w Welford
	for i := range xs {
		xs[i] = 5 + 2*rng.NormFloat64()
		w.Add(xs[i])
	}
	if w.Count() != 1000 {
		t.Fatalf("count %d", w.Count())
	}
	if m := Mean(xs); math.Abs(w.Mean()-m) > 1e-12 {
		t.Errorf("mean %v vs two-pass %v", w.Mean(), m)
	}
	if sd := Std(xs); math.Abs(w.Std()-sd) > 1e-12 {
		t.Errorf("std %v vs two-pass %v", w.Std(), sd)
	}
}

func TestWelfordDegenerate(t *testing.T) {
	var w Welford
	if !math.IsNaN(w.Mean()) || !math.IsNaN(w.Std()) {
		t.Error("empty accumulator should be NaN")
	}
	w.Add(4)
	if w.Mean() != 4 || !math.IsNaN(w.Std()) {
		t.Errorf("n=1: mean %v std %v", w.Mean(), w.Std())
	}
}

func TestWelfordMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var all, a, b Welford
	for i := 0; i < 500; i++ {
		v := rng.ExpFloat64()
		all.Add(v)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.Merge(b)
	if a.Count() != all.Count() {
		t.Fatalf("merged count %d vs %d", a.Count(), all.Count())
	}
	if math.Abs(a.Mean()-all.Mean()) > 1e-12 || math.Abs(a.Std()-all.Std()) > 1e-12 {
		t.Errorf("merged mean/std %v/%v vs %v/%v", a.Mean(), a.Std(), all.Mean(), all.Std())
	}
	// Merging into an empty accumulator copies.
	var empty Welford
	empty.Merge(all)
	if empty.Mean() != all.Mean() || empty.Count() != all.Count() {
		t.Error("merge into empty should copy")
	}
}

// TestSketchExactModeBitIdentical pins the tentpole's compatibility
// requirement: below capacity, every Sketch summary must match the legacy
// collected-slice path bit for bit.
func TestSketchExactModeBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := NewSketchSize(512)
	var xs []float64
	for i := 0; i < 500; i++ {
		v := rng.NormFloat64() * 3
		xs = append(xs, v)
		s.Add(v)
	}
	if !s.Exact() {
		t.Fatal("should still be exact")
	}
	for _, p := range []float64{0, 5, 50, 95, 99, 100} {
		if got, want := s.Quantile(p), Percentile(xs, p); got != want {
			t.Errorf("P%v: sketch %v != exact %v", p, got, want)
		}
	}
	if got, want := s.Mean(), Mean(xs); got != want {
		t.Errorf("mean: sketch %v != exact %v", got, want)
	}
	if got, want := s.Std(), Std(xs); got != want {
		t.Errorf("std: sketch %v != exact %v", got, want)
	}
	vals := s.Values()
	for i, v := range vals {
		if v != xs[i] {
			t.Fatalf("Values()[%d] = %v, want %v (insertion order)", i, v, xs[i])
		}
	}
}

// TestSketchReservoirErrorBound feeds 10k observations through a
// default-capacity sketch and asserts its median/95th estimates diverge
// from the exact values by less than 0.5% — the error budget the
// experiment tables inherit when trial counts exceed the exact threshold.
func TestSketchReservoirErrorBound(t *testing.T) {
	const n = 10000
	rng := rand.New(rand.NewSource(12))
	s := NewSketch()
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 100 * rng.Float64()
		s.Add(xs[i])
	}
	if s.Exact() {
		t.Fatal("sketch should have left exact mode")
	}
	if len(s.Values()) != DefaultSketchSize {
		t.Fatalf("reservoir size %d", len(s.Values()))
	}
	for _, p := range []float64{50, 95} {
		got := s.Quantile(p)
		want := Percentile(xs, p)
		if rel := math.Abs(got-want) / want; rel > 0.005 {
			t.Errorf("P%v: sketch %v vs exact %v (divergence %.3f%%)", p, got, want, rel*100)
		}
	}
	// Mean/std stay exact (Welford) even past the threshold.
	if m := Mean(xs); math.Abs(s.Mean()-m) > 1e-9 {
		t.Errorf("mean %v vs %v", s.Mean(), m)
	}
	if sd := Std(xs); math.Abs(s.Std()-sd) > 1e-9 {
		t.Errorf("std %v vs %v", s.Std(), sd)
	}
}

// TestSketchDeterministic: identical insertion sequences give identical
// reservoirs (no global randomness).
func TestSketchDeterministic(t *testing.T) {
	feed := func() *Sketch {
		s := NewSketchSize(64)
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < 5000; i++ {
			s.Add(rng.NormFloat64())
		}
		return s
	}
	a, b := feed(), feed()
	av, bv := a.Values(), b.Values()
	for i := range av {
		if av[i] != bv[i] {
			t.Fatalf("reservoirs diverge at %d", i)
		}
	}
	if a.Quantile(50) != b.Quantile(50) {
		t.Error("quantiles diverge")
	}
}

func TestSketchEmpty(t *testing.T) {
	s := NewSketch()
	if !math.IsNaN(s.Quantile(50)) || !math.IsNaN(s.Mean()) {
		t.Error("empty sketch should answer NaN")
	}
	if s.Count() != 0 || len(s.Values()) != 0 {
		t.Error("empty sketch should hold nothing")
	}
}

func TestSummariesMatchesPercentile(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 333)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 10
	}
	ps := []float64{0, 25, 50, 90, 95, 99, 100}
	got := Summaries(xs, ps...)
	for i, p := range ps {
		if want := Percentile(xs, p); got[i] != want {
			t.Errorf("P%v: Summaries %v != Percentile %v", p, got[i], want)
		}
	}
	for _, v := range Summaries(nil, 50, 95) {
		if !math.IsNaN(v) {
			t.Error("empty input should be NaN")
		}
	}
	// Input must not be mutated (Percentile's contract, inherited).
	ys := []float64{3, 1, 2}
	Summaries(ys, 50)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Error("input mutated")
	}
}

// TestSummariesAllocationRegression pins the sort hoist: asking for three
// percentiles of a 10k-sample series must cost O(1) allocations (one copy
// + one result slice), not three copies as with repeated Percentile calls.
func TestSummariesAllocationRegression(t *testing.T) {
	xs := make([]float64, 10000)
	rng := rand.New(rand.NewSource(2))
	for i := range xs {
		xs[i] = rng.Float64()
	}
	allocs := testing.AllocsPerRun(10, func() {
		Summaries(xs, 50, 95, 99)
	})
	// One defensive copy, one result slice, plus slack for sort internals.
	if allocs > 4 {
		t.Errorf("Summaries allocates %v objects per call, want ≤ 4", allocs)
	}
	perCall := testing.AllocsPerRun(10, func() {
		Percentile(xs, 50)
		Percentile(xs, 95)
		Percentile(xs, 99)
	})
	if allocs >= perCall {
		t.Errorf("Summaries (%v allocs) should beat three Percentile calls (%v)", allocs, perCall)
	}
}
