// Package stats provides the summary statistics and CDF machinery the
// benchmark harness uses to report each figure.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Median returns the middle value (mean of middles for even n).
// NaN for empty input.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Percentile returns the p-th percentile (0–100) using linear
// interpolation between order statistics. NaN for empty input.
//
// Each call copies and sorts xs; when several percentiles of the same
// sample are needed, Summaries sorts once.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return percentileSorted(s, p)
}

// percentileSorted interpolates the p-th percentile over already-sorted,
// non-empty s. All percentile paths (Percentile, Summaries, Sketch) share
// this so their answers agree bit for bit.
func percentileSorted(s []float64, p float64) float64 {
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Summaries returns the requested percentiles (0–100) of xs with a single
// copy-and-sort, hoisting the per-call sort out of the repeated-percentile
// pattern ("median and 95th of the same series") that dominates experiment
// table assembly. Results match Percentile bit for bit. Empty input yields
// all-NaN.
func Summaries(xs []float64, ps ...float64) []float64 {
	out := make([]float64, len(ps))
	if len(xs) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	for i, p := range ps {
		out[i] = percentileSorted(s, p)
	}
	return out
}

// Mean returns the arithmetic mean (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// Std returns the sample standard deviation (NaN for n < 2).
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var s float64
	for _, v := range xs {
		d := v - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// CDF returns (value, cumulative fraction) pairs over sorted xs.
func CDF(xs []float64) [][2]float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	out := make([][2]float64, len(s))
	for i, v := range s {
		out[i] = [2]float64{v, float64(i+1) / float64(len(s))}
	}
	return out
}

// CDFAt returns the fraction of xs ≤ v.
func CDFAt(xs []float64, v float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	n := 0
	for _, x := range xs {
		if x <= v {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// Summary formats median / 95th for a sample.
func Summary(xs []float64) string {
	return fmt.Sprintf("median %.2f, 95th %.2f (n=%d)", Median(xs), Percentile(xs, 95), len(xs))
}

// Table is a printable experiment result.
type Table struct {
	ID     string // e.g. "fig11a"
	Title  string
	Paper  string // what the paper reports (shape to compare against)
	Header []string
	Rows   [][]string
	Notes  string
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	cols := len(t.Header)
	width := make([]int, cols)
	for c, h := range t.Header {
		width[c] = len(h)
	}
	for _, row := range t.Rows {
		for c := 0; c < cols && c < len(row); c++ {
			if len(row[c]) > width[c] {
				width[c] = len(row[c])
			}
		}
	}
	line := func(cells []string) string {
		s := ""
		for c := 0; c < cols; c++ {
			cell := ""
			if c < len(cells) {
				cell = cells[c]
			}
			s += fmt.Sprintf("%-*s  ", width[c], cell)
		}
		return s + "\n"
	}
	out := fmt.Sprintf("== %s — %s ==\n", t.ID, t.Title)
	if t.Paper != "" {
		out += "paper: " + t.Paper + "\n"
	}
	out += line(t.Header)
	for _, row := range t.Rows {
		out += line(row)
	}
	if t.Notes != "" {
		out += "note: " + t.Notes + "\n"
	}
	return out
}

// F formats a float at 2 decimals (the table cell helper).
func F(v float64) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	return fmt.Sprintf("%.2f", v)
}

// F3 formats a float at 3 decimals.
func F3(v float64) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	return fmt.Sprintf("%.3f", v)
}
