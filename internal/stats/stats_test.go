package stats

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{1, 2, 3}, 2},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{5}, 5},
		{[]float64{3, 1, 2}, 2}, // unsorted input
	}
	for _, c := range cases {
		if got := Median(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Median(%v) = %g, want %g", c.in, got, c.want)
		}
	}
	if !math.IsNaN(Median(nil)) {
		t.Error("Median(nil) should be NaN")
	}
}

func TestPercentileEdges(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	if got := Percentile(xs, 0); got != 10 {
		t.Errorf("P0 = %g", got)
	}
	if got := Percentile(xs, 100); got != 50 {
		t.Errorf("P100 = %g", got)
	}
	if got := Percentile(xs, -5); got != 10 {
		t.Errorf("P(-5) = %g", got)
	}
	if got := Percentile(xs, 105); got != 50 {
		t.Errorf("P(105) = %g", got)
	}
	// Interpolation: P25 of [10..50] = 20.
	if got := Percentile(xs, 25); math.Abs(got-20) > 1e-12 {
		t.Errorf("P25 = %g", got)
	}
	if got := Percentile(xs, 62.5); math.Abs(got-35) > 1e-12 {
		t.Errorf("P62.5 = %g", got)
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 3+int(uint(seed)%40))
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			v := Percentile(xs, p)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("input mutated")
	}
}

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); math.Abs(got-5) > 1e-12 {
		t.Errorf("Mean = %g", got)
	}
	// Sample std of this classic set is ~2.138.
	if got := Std(xs); math.Abs(got-2.1381) > 1e-3 {
		t.Errorf("Std = %g", got)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Std([]float64{1})) {
		t.Error("degenerate inputs should be NaN")
	}
}

func TestCDF(t *testing.T) {
	xs := []float64{3, 1, 2}
	cdf := CDF(xs)
	if len(cdf) != 3 {
		t.Fatal("length")
	}
	if cdf[0][0] != 1 || cdf[2][0] != 3 {
		t.Error("values not sorted")
	}
	if math.Abs(cdf[1][1]-2.0/3) > 1e-12 || cdf[2][1] != 1 {
		t.Error("fractions wrong")
	}
	// CDFAt agrees with the curve.
	if got := CDFAt(xs, 2); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("CDFAt(2) = %g", got)
	}
	if got := CDFAt(xs, 0.5); got != 0 {
		t.Errorf("CDFAt(0.5) = %g", got)
	}
	if !math.IsNaN(CDFAt(nil, 1)) {
		t.Error("CDFAt(nil) should be NaN")
	}
}

func TestCDFIsSortedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+int(uint(seed)%30))
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		cdf := CDF(xs)
		vals := make([]float64, len(cdf))
		for i, p := range cdf {
			vals[i] = p[0]
		}
		return sort.Float64sAreSorted(vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTableFormat(t *testing.T) {
	tab := &Table{
		ID:     "test1",
		Title:  "a test table",
		Paper:  "paper says hi",
		Header: []string{"col-a", "b"},
		Rows:   [][]string{{"1", "long-cell-value"}, {"22"}},
		Notes:  "a note",
	}
	s := tab.Format()
	for _, want := range []string{"test1", "a test table", "paper says hi", "col-a", "long-cell-value", "a note"} {
		if !strings.Contains(s, want) {
			t.Errorf("formatted table missing %q:\n%s", want, s)
		}
	}
	// Missing cells must not panic and columns stay aligned.
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) < 5 {
		t.Errorf("too few lines:\n%s", s)
	}
}

func TestFormatHelpers(t *testing.T) {
	if F(1.234) != "1.23" || F3(1.2345) != "1.234" {
		t.Error("float formatting wrong")
	}
	if F(math.NaN()) != "n/a" || F3(math.NaN()) != "n/a" {
		t.Error("NaN formatting wrong")
	}
}

func TestSummary(t *testing.T) {
	s := Summary([]float64{1, 2, 3})
	if !strings.Contains(s, "median 2.00") || !strings.Contains(s, "n=3") {
		t.Errorf("summary %q", s)
	}
}
