// Versioned binary codec for filter state. A restored tracker must
// continue bit-identically — confidence widths feed the service's
// replayed round payloads — so every float travels as its exact IEEE-754
// bit pattern (math.Float64bits), never through a decimal round trip.
package track

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// trackerCodecVersion tags the Tracker wire format. Bump on any layout
// change; UnmarshalBinary rejects unknown versions rather than guessing.
const trackerCodecVersion = 1

// trackerBlobLen is the fixed encoded size of one Tracker: version byte,
// flags byte, 3 config + 5+5 axis + depth + lastT floats.
const trackerBlobLen = 2 + 8*15

func putF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

func getF64(b []byte) (float64, []byte) {
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), b[8:]
}

// MarshalBinary encodes the complete filter state (config, both axes,
// depth, init flag, last fix time).
func (tr *Tracker) MarshalBinary() ([]byte, error) {
	b := make([]byte, 0, trackerBlobLen)
	b = append(b, trackerCodecVersion)
	var flags byte
	if tr.initialized {
		flags |= 1
	}
	b = append(b, flags)
	for _, v := range [...]float64{
		tr.cfg.ProcessAccel, tr.cfg.FixStd, tr.cfg.MaxSpeed,
		tr.ax.x, tr.ax.v, tr.ax.pxx, tr.ax.pxv, tr.ax.pvv,
		tr.ay.x, tr.ay.v, tr.ay.pxx, tr.ay.pxv, tr.ay.pvv,
		tr.depth, tr.lastT,
	} {
		b = putF64(b, v)
	}
	return b, nil
}

// UnmarshalBinary replaces the tracker's state with the encoded one.
func (tr *Tracker) UnmarshalBinary(data []byte) error {
	if len(data) != trackerBlobLen {
		return fmt.Errorf("track: tracker blob is %d bytes, want %d", len(data), trackerBlobLen)
	}
	if data[0] != trackerCodecVersion {
		return fmt.Errorf("track: unknown tracker codec version %d", data[0])
	}
	tr.initialized = data[1]&1 != 0
	b := data[2:]
	dst := [...]*float64{
		&tr.cfg.ProcessAccel, &tr.cfg.FixStd, &tr.cfg.MaxSpeed,
		&tr.ax.x, &tr.ax.v, &tr.ax.pxx, &tr.ax.pxv, &tr.ax.pvv,
		&tr.ay.x, &tr.ay.v, &tr.ay.pxx, &tr.ay.pxv, &tr.ay.pvv,
		&tr.depth, &tr.lastT,
	}
	for _, p := range dst {
		*p, b = getF64(b)
	}
	return nil
}

// groupCodecVersion tags the GroupTracker wire format.
const groupCodecVersion = 1

// MarshalBinary encodes the group config plus every per-device filter,
// in ascending device order so equal states encode to equal bytes.
func (g *GroupTracker) MarshalBinary() ([]byte, error) {
	ids := make([]int, 0, len(g.trackers))
	for id := range g.trackers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	b := make([]byte, 0, 1+8*3+4+len(ids)*(4+trackerBlobLen))
	b = append(b, groupCodecVersion)
	b = putF64(b, g.cfg.ProcessAccel)
	b = putF64(b, g.cfg.FixStd)
	b = putF64(b, g.cfg.MaxSpeed)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(ids)))
	for _, id := range ids {
		blob, err := g.trackers[id].MarshalBinary()
		if err != nil {
			return nil, err
		}
		b = binary.LittleEndian.AppendUint32(b, uint32(id))
		b = append(b, blob...)
	}
	return b, nil
}

// UnmarshalBinary replaces the group's config and filter set.
func (g *GroupTracker) UnmarshalBinary(data []byte) error {
	const head = 1 + 8*3 + 4
	if len(data) < head {
		return fmt.Errorf("track: group blob truncated at %d bytes", len(data))
	}
	if data[0] != groupCodecVersion {
		return fmt.Errorf("track: unknown group codec version %d", data[0])
	}
	b := data[1:]
	var cfg FilterConfig
	cfg.ProcessAccel, b = getF64(b)
	cfg.FixStd, b = getF64(b)
	cfg.MaxSpeed, b = getF64(b)
	n := binary.LittleEndian.Uint32(b)
	b = b[4:]
	if len(b) != int(n)*(4+trackerBlobLen) {
		return fmt.Errorf("track: group blob holds %d bytes for %d trackers, want %d",
			len(b), n, int(n)*(4+trackerBlobLen))
	}
	trackers := make(map[int]*Tracker, n)
	for i := uint32(0); i < n; i++ {
		id := int(int32(binary.LittleEndian.Uint32(b)))
		b = b[4:]
		tr := &Tracker{}
		if err := tr.UnmarshalBinary(b[:trackerBlobLen]); err != nil {
			return fmt.Errorf("track: device %d: %w", id, err)
		}
		if _, dup := trackers[id]; dup {
			return fmt.Errorf("track: device %d appears twice in group blob", id)
		}
		trackers[id] = tr
		b = b[trackerBlobLen:]
	}
	g.cfg = cfg
	g.trackers = trackers
	return nil
}
