package track

import (
	"bytes"
	"math"
	"testing"

	"uwpos/internal/geom"
)

// feed advances a group tracker through a deterministic fix history.
func feedGroup(t *testing.T, g *GroupTracker, from, to int) {
	t.Helper()
	for r := from; r < to; r++ {
		ts := float64(r) * 10
		fixes := []geom.Vec3{
			{X: 0.1 * float64(r), Y: -0.2 * float64(r), Z: 1.5},
			{X: 5 + 0.05*float64(r), Y: 1, Z: 2.0},
			{X: 8, Y: -3 - 0.1*float64(r), Z: 1.0},
		}
		if err := g.Fix(ts, fixes); err != nil {
			t.Fatal(err)
		}
	}
}

// TestGroupCodecRoundTrip: encode → decode → the restored group must
// behave bit-identically, both in immediate queries and after further
// fixes (the covariances drive the next Kalman gain, so any loss of
// precision would diverge the gains).
func TestGroupCodecRoundTrip(t *testing.T) {
	g := NewGroupTracker(FilterConfig{})
	feedGroup(t, g, 0, 5)
	blob, err := g.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	re := NewGroupTracker(FilterConfig{})
	if err := re.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}

	// Re-encoding must be byte-identical (deterministic ordering).
	blob2, err := re.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatal("re-encoded blob differs")
	}

	// Continue both with identical fixes; states must stay bit-equal.
	feedGroup(t, g, 5, 8)
	feedGroup(t, re, 5, 8)
	for id := 0; id < 3; id++ {
		a, b := g.Tracker(id), re.Tracker(id)
		if a == nil || b == nil {
			t.Fatalf("device %d missing after restore", id)
		}
		pa, _ := a.PositionAt(100)
		pb, _ := b.PositionAt(100)
		if pa != pb {
			t.Errorf("device %d: positions diverged %v vs %v", id, pa, pb)
		}
		if va, vb := a.Velocity(), b.Velocity(); va != vb {
			t.Errorf("device %d: velocities diverged %v vs %v", id, va, vb)
		}
		if ua, ub := a.Uncertainty(), b.Uncertainty(); math.Float64bits(ua) != math.Float64bits(ub) {
			t.Errorf("device %d: uncertainty diverged %v vs %v", id, ua, ub)
		}
	}
}

func TestTrackerCodecUninitialized(t *testing.T) {
	tr := NewTracker(FilterConfig{})
	blob, err := tr.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	re := &Tracker{}
	if err := re.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if re.initialized {
		t.Fatal("restored tracker claims initialization")
	}
	if re.cfg != tr.cfg {
		t.Fatalf("config mismatch: %+v vs %+v", re.cfg, tr.cfg)
	}
}

func TestCodecRejectsCorruption(t *testing.T) {
	g := NewGroupTracker(FilterConfig{})
	feedGroup(t, g, 0, 2)
	blob, err := g.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"empty":       {},
		"truncated":   blob[:len(blob)-3],
		"version":     append([]byte{99}, blob[1:]...),
		"extra bytes": append(append([]byte{}, blob...), 0xAB),
	}
	for name, bad := range cases {
		re := NewGroupTracker(FilterConfig{})
		if err := re.UnmarshalBinary(bad); err == nil {
			t.Errorf("%s: corruption accepted", name)
		}
	}

	tr := &Tracker{}
	if err := tr.UnmarshalBinary(make([]byte, trackerBlobLen-1)); err == nil {
		t.Error("short tracker blob accepted")
	}
	badVer := make([]byte, trackerBlobLen)
	badVer[0] = 7
	if err := tr.UnmarshalBinary(badVer); err == nil {
		t.Error("unknown tracker version accepted")
	}
}
