// Package track implements the paper's §5 future-work direction:
// turning user-initiated localization rounds into continuous tracking by
// fusing successive acoustic fixes with a motion model, without running
// acoustics continuously.
//
// Each diver gets an independent constant-velocity Kalman filter over the
// horizontal plane (depth is measured directly each round, so it needs no
// filtering). The filter is deliberately small: state [x y vx vy], fix
// measurements [x y], closed-form 2×2 updates per axis — divers' axes are
// uncoupled under a constant-velocity model with isotropic noise.
package track

import (
	"fmt"
	"math"

	"uwpos/internal/geom"
)

// FilterConfig tunes the per-diver motion filter.
type FilterConfig struct {
	// ProcessAccel is the 1σ unmodelled acceleration (m/s²): how quickly
	// a diver can change velocity. Recreational divers: ~0.2.
	ProcessAccel float64
	// FixStd is the 1σ error of one acoustic fix (m). The paper's median
	// 2D error of ~0.9 m corresponds to σ ≈ 0.8.
	FixStd float64
	// MaxSpeed clamps velocity estimates (m/s); divers rarely exceed 1.
	MaxSpeed float64
}

// DefaultConfig returns values matched to the paper's deployment numbers.
func DefaultConfig() FilterConfig {
	return FilterConfig{ProcessAccel: 0.2, FixStd: 0.8, MaxSpeed: 1.5}
}

func (c *FilterConfig) defaults() {
	if c.ProcessAccel == 0 {
		c.ProcessAccel = 0.2
	}
	if c.FixStd == 0 {
		c.FixStd = 0.8
	}
	if c.MaxSpeed == 0 {
		c.MaxSpeed = 1.5
	}
}

// axis is a 1D constant-velocity Kalman filter (position, velocity).
type axis struct {
	x, v float64
	// Covariance [[pxx pxv],[pxv pvv]].
	pxx, pxv, pvv float64
}

func (a *axis) predict(dt, accel float64) {
	a.x += a.v * dt
	// P = F P Fᵀ + Q with F = [[1 dt],[0 1]].
	pxx := a.pxx + dt*(a.pxv+a.pxv) + dt*dt*a.pvv
	pxv := a.pxv + dt*a.pvv
	// Piecewise-constant white acceleration model.
	q := accel * accel
	pxx += q * dt * dt * dt * dt / 4
	pxv += q * dt * dt * dt / 2
	a.pvv += q * dt * dt
	a.pxx, a.pxv = pxx, pxv
}

func (a *axis) update(z, r float64) {
	s := a.pxx + r*r
	kx := a.pxx / s
	kv := a.pxv / s
	innov := z - a.x
	a.x += kx * innov
	a.v += kv * innov
	// Joseph-free standard form (numerically fine at these scales).
	pxx := (1 - kx) * a.pxx
	pxv := (1 - kx) * a.pxv
	pvv := a.pvv - kv*a.pxv
	a.pxx, a.pxv, a.pvv = pxx, pxv, pvv
}

// Tracker fuses acoustic fixes for one diver.
type Tracker struct {
	cfg         FilterConfig
	ax, ay      axis
	depth       float64
	initialized bool
	lastT       float64
}

// NewTracker creates an uninitialized tracker; the first fix initializes
// the state.
func NewTracker(cfg FilterConfig) *Tracker {
	cfg.defaults()
	return &Tracker{cfg: cfg}
}

// Fix feeds one localization result taken at time t (seconds). Fixes must
// arrive in time order.
func (tr *Tracker) Fix(t float64, pos geom.Vec3) error {
	if math.IsNaN(pos.X) || math.IsNaN(pos.Y) {
		return fmt.Errorf("track: NaN fix")
	}
	if !tr.initialized {
		tr.ax = axis{x: pos.X, pxx: tr.cfg.FixStd * tr.cfg.FixStd, pvv: 1}
		tr.ay = axis{x: pos.Y, pxx: tr.cfg.FixStd * tr.cfg.FixStd, pvv: 1}
		tr.depth = pos.Z
		tr.initialized = true
		tr.lastT = t
		return nil
	}
	dt := t - tr.lastT
	if dt < 0 {
		return fmt.Errorf("track: fixes out of order (dt=%g)", dt)
	}
	tr.ax.predict(dt, tr.cfg.ProcessAccel)
	tr.ay.predict(dt, tr.cfg.ProcessAccel)
	tr.ax.update(pos.X, tr.cfg.FixStd)
	tr.ay.update(pos.Y, tr.cfg.FixStd)
	tr.clampSpeed()
	tr.depth = pos.Z
	tr.lastT = t
	return nil
}

func (tr *Tracker) clampSpeed() {
	sp := math.Hypot(tr.ax.v, tr.ay.v)
	if sp > tr.cfg.MaxSpeed {
		sc := tr.cfg.MaxSpeed / sp
		tr.ax.v *= sc
		tr.ay.v *= sc
	}
}

// PositionAt extrapolates the track to time t ≥ last fix.
func (tr *Tracker) PositionAt(t float64) (geom.Vec3, error) {
	if !tr.initialized {
		return geom.Vec3{}, fmt.Errorf("track: no fixes yet")
	}
	dt := t - tr.lastT
	if dt < 0 {
		dt = 0
	}
	return geom.Vec3{
		X: tr.ax.x + tr.ax.v*dt,
		Y: tr.ay.x + tr.ay.v*dt,
		Z: tr.depth,
	}, nil
}

// Velocity returns the current velocity estimate (m/s).
func (tr *Tracker) Velocity() geom.Vec2 { return geom.Vec2{X: tr.ax.v, Y: tr.ay.v} }

// Uncertainty returns the 1σ position uncertainty (m) at the last fix.
func (tr *Tracker) Uncertainty() float64 {
	if !tr.initialized {
		return math.Inf(1)
	}
	return math.Sqrt((tr.ax.pxx + tr.ay.pxx) / 2)
}

// GroupTracker fuses fixes for a whole dive group.
type GroupTracker struct {
	cfg      FilterConfig
	trackers map[int]*Tracker
}

// NewGroupTracker builds a tracker set.
func NewGroupTracker(cfg FilterConfig) *GroupTracker {
	cfg.defaults()
	return &GroupTracker{cfg: cfg, trackers: make(map[int]*Tracker)}
}

// Fix feeds one round's positions (indexed by device ID) at time t.
func (g *GroupTracker) Fix(t float64, positions []geom.Vec3) error {
	for id, p := range positions {
		tr, ok := g.trackers[id]
		if !ok {
			tr = NewTracker(g.cfg)
			g.trackers[id] = tr
		}
		if err := tr.Fix(t, p); err != nil {
			return fmt.Errorf("device %d: %w", id, err)
		}
	}
	return nil
}

// PositionsAt extrapolates every tracked diver to time t.
func (g *GroupTracker) PositionsAt(t float64) map[int]geom.Vec3 {
	out := make(map[int]geom.Vec3, len(g.trackers))
	for id, tr := range g.trackers {
		if p, err := tr.PositionAt(t); err == nil {
			out[id] = p
		}
	}
	return out
}

// Tracker returns the per-device filter (nil if the device has no fixes).
func (g *GroupTracker) Tracker(id int) *Tracker { return g.trackers[id] }
