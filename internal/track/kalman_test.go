package track

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"uwpos/internal/geom"
)

func TestTrackerRequiresFixes(t *testing.T) {
	tr := NewTracker(DefaultConfig())
	if _, err := tr.PositionAt(0); err == nil {
		t.Error("position before any fix should error")
	}
	if !math.IsInf(tr.Uncertainty(), 1) {
		t.Error("uncertainty before fixes should be +Inf")
	}
}

func TestTrackerRejectsBadFixes(t *testing.T) {
	tr := NewTracker(DefaultConfig())
	if err := tr.Fix(0, geom.Vec3{X: math.NaN()}); err == nil {
		t.Error("NaN fix should error")
	}
	if err := tr.Fix(10, geom.Vec3{X: 1}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Fix(5, geom.Vec3{X: 2}); err == nil {
		t.Error("out-of-order fix should error")
	}
}

func smoothCfg() FilterConfig {
	// Precision assertions need a small tracking index
	// λ = a·dt²/σ_fix ≪ 1; at 4–5 s fix spacing that means a ≈ 0.01 m/s²
	// (a deliberately calm diver). DefaultConfig trades smoothing for
	// responsiveness to real diver acceleration.
	return FilterConfig{ProcessAccel: 0.01, FixStd: 0.8, MaxSpeed: 1.5}
}

func TestTrackerConvergesOnStaticDiver(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := NewTracker(smoothCfg())
	truth := geom.Vec3{X: 10, Y: -4, Z: 3}
	for k := 0; k < 30; k++ {
		fix := geom.Vec3{
			X: truth.X + 0.8*rng.NormFloat64(),
			Y: truth.Y + 0.8*rng.NormFloat64(),
			Z: truth.Z,
		}
		if err := tr.Fix(float64(k)*5, fix); err != nil {
			t.Fatal(err)
		}
	}
	got, err := tr.PositionAt(150)
	if err != nil {
		t.Fatal(err)
	}
	if e := got.Sub(truth).Norm(); e > 0.8 {
		t.Errorf("static convergence error %.2f m", e)
	}
	// Filtered estimate must beat the raw fix noise.
	if u := tr.Uncertainty(); u > 0.8 {
		t.Errorf("posterior uncertainty %.2f not below fix σ", u)
	}
	// Velocity should be near zero.
	if v := tr.Velocity().Norm(); v > 0.15 {
		t.Errorf("phantom velocity %.2f m/s", v)
	}
}

func TestTrackerFollowsMovingDiver(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := NewTracker(smoothCfg())
	vel := geom.Vec2{X: 0.4, Y: -0.2}
	for k := 0; k < 25; k++ {
		tt := float64(k) * 4
		fix := geom.Vec3{
			X: vel.X*tt + 0.8*rng.NormFloat64(),
			Y: vel.Y*tt + 0.8*rng.NormFloat64(),
			Z: 2,
		}
		if err := tr.Fix(tt, fix); err != nil {
			t.Fatal(err)
		}
	}
	// Velocity estimate near truth.
	v := tr.Velocity()
	if math.Abs(v.X-vel.X) > 0.15 || math.Abs(v.Y-vel.Y) > 0.15 {
		t.Errorf("velocity %+v, want %+v", v, vel)
	}
	// Extrapolation 6 s past the last fix tracks the motion.
	tLast := 24.0 * 4
	want := geom.Vec3{X: vel.X * (tLast + 6), Y: vel.Y * (tLast + 6), Z: 2}
	got, _ := tr.PositionAt(tLast + 6)
	if e := got.Sub(want).Norm(); e > 1.2 {
		t.Errorf("extrapolation error %.2f m", e)
	}
}

func TestTrackerBeatsRawFixesProperty(t *testing.T) {
	// Property: averaged over a long static track, filtered error is
	// smaller than raw per-fix error.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := NewTracker(smoothCfg())
		truth := geom.Vec3{X: rng.Float64() * 20, Y: rng.Float64() * 20, Z: 3}
		var rawErr, filtErr float64
		n := 25
		for k := 0; k < n; k++ {
			fix := geom.Vec3{
				X: truth.X + 0.8*rng.NormFloat64(),
				Y: truth.Y + 0.8*rng.NormFloat64(),
				Z: truth.Z,
			}
			if err := tr.Fix(float64(k)*5, fix); err != nil {
				return false
			}
			if k >= 5 { // after warm-up
				rawErr += fix.Sub(truth).Norm()
				got, _ := tr.PositionAt(float64(k) * 5)
				filtErr += got.Sub(truth).Norm()
			}
		}
		return filtErr < rawErr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSpeedClamp(t *testing.T) {
	tr := NewTracker(FilterConfig{ProcessAccel: 5, FixStd: 0.1, MaxSpeed: 1})
	// Fixes teleporting 10 m per second would imply 10 m/s.
	if err := tr.Fix(0, geom.Vec3{}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Fix(1, geom.Vec3{X: 10}); err != nil {
		t.Fatal(err)
	}
	if v := tr.Velocity().Norm(); v > 1.0+1e-9 {
		t.Errorf("speed clamp failed: %.2f m/s", v)
	}
}

func TestGroupTracker(t *testing.T) {
	g := NewGroupTracker(smoothCfg())
	rng := rand.New(rand.NewSource(3))
	truths := []geom.Vec3{{X: 0, Y: 0, Z: 2}, {X: 5, Y: 2, Z: 3}, {X: 12, Y: -4, Z: 1}}
	for k := 0; k < 25; k++ {
		fixes := make([]geom.Vec3, len(truths))
		for i, tru := range truths {
			fixes[i] = geom.Vec3{
				X: tru.X + 0.5*rng.NormFloat64(),
				Y: tru.Y + 0.5*rng.NormFloat64(),
				Z: tru.Z,
			}
		}
		if err := g.Fix(float64(k)*5, fixes); err != nil {
			t.Fatal(err)
		}
	}
	got := g.PositionsAt(125)
	if len(got) != 3 {
		t.Fatalf("tracked %d divers", len(got))
	}
	for i, tru := range truths {
		if e := got[i].Sub(tru).Norm(); e > 0.8 {
			t.Errorf("diver %d error %.2f m", i, e)
		}
	}
	if g.Tracker(0) == nil || g.Tracker(9) != nil {
		t.Error("Tracker() lookup wrong")
	}
}
