package uwpos

import (
	"context"
	"fmt"

	"uwpos/internal/sim"
)

// RangeConfig describes a single two-device ranging exchange: two devices
// separated horizontally by SeparationM metres at the given depths in Env.
// This is the §2.2 primitive on its own — the companion smartphone ranging
// paper's scenario — without the group protocol around it.
type RangeConfig struct {
	Env *Environment
	// SeparationM is the horizontal separation in metres.
	SeparationM float64
	// DepthAM and DepthBM are the two devices' depths in metres
	// (default 2.5 each, the benchmark rig depth).
	DepthAM, DepthBM float64
	// Seed drives the exchange's randomness (default 1).
	Seed int64
}

// RangeOutcome reports one two-way exchange.
type RangeOutcome struct {
	// EstimatedM is the measured distance.
	EstimatedM float64
	// TrueM is the ground-truth distance (3D, including the depth delta).
	TrueM float64
}

// RangeBetween runs a single two-way acoustic ranging exchange. The
// exchange degrades like real acoustics: when either direction of the
// exchange is undetectable the returned error wraps ErrNotDetected and
// the outcome still carries the true distance, so callers can distinguish
// "bad acoustics" (degrade, retry, widen error bars) from caller mistakes
// (ConfigError) and from a cancelled or expired ctx.
func RangeBetween(ctx context.Context, cfg RangeConfig) (RangeOutcome, error) {
	if cfg.Env == nil {
		return RangeOutcome{}, ConfigError{Field: "Env", Reason: "nil environment"}
	}
	if cfg.SeparationM <= 0 {
		return RangeOutcome{}, configErrf("SeparationM", "must be positive, got %g", cfg.SeparationM)
	}
	if cfg.DepthAM == 0 {
		cfg.DepthAM = 2.5
	}
	if cfg.DepthBM == 0 {
		cfg.DepthBM = 2.5
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	nw, err := sim.NewNetwork(sim.TwoDeviceConfig(cfg.Env, cfg.SeparationM, cfg.DepthAM, cfg.DepthBM, cfg.Seed))
	if err != nil {
		return RangeOutcome{}, err
	}
	res, err := nw.RangeOnce(ctx, sim.MethodDualMic)
	if err != nil {
		return RangeOutcome{}, err
	}
	out := RangeOutcome{EstimatedM: res.EstimatedM, TrueM: res.TrueM}
	if !res.Detected {
		out.EstimatedM = 0
		return out, fmt.Errorf("%w (separation %.1f m in %s)", ErrNotDetected, cfg.SeparationM, cfg.Env.Name)
	}
	return out, nil
}

// RangeBetweenPositional is the pre-context positional form of
// RangeBetween, kept as a thin compatibility wrapper for one release.
//
// Deprecated: use RangeBetween(ctx, RangeConfig{...}), which adds
// deadline/cancellation support and typed errors. The zero-value defaults
// differ: this wrapper passes depths and seed through verbatim, exactly as
// the old entry point did.
func RangeBetweenPositional(env *Environment, sepM, depthA, depthB float64, seed int64) (estimated, trueDist float64, err error) {
	nw, err := sim.NewNetwork(sim.TwoDeviceConfig(env, sepM, depthA, depthB, seed))
	if err != nil {
		return 0, 0, err
	}
	res, rerr := nw.RangeOnce(context.Background(), sim.MethodDualMic)
	if rerr != nil {
		return 0, 0, rerr
	}
	if !res.Detected {
		return 0, res.TrueM, ErrNotDetected
	}
	return res.EstimatedM, res.TrueM, nil
}
