package uwpos

import (
	"math"

	"uwpos/internal/geom"
	"uwpos/internal/track"
)

// TrackerConfig tunes the continuous-tracking extension (§5 of the paper
// flags sensor-fusion tracking as future work; this is the acoustic-fix
// half: a constant-velocity filter over repeated Locate() rounds).
type TrackerConfig struct {
	// ProcessAccel is the 1σ unmodelled diver acceleration in m/s²
	// (default 0.2 — responsive; use ~0.01 for maximum smoothing of a
	// station-keeping group).
	ProcessAccel float64
	// FixStd is the 1σ accuracy of one localization fix in metres
	// (default 0.8, matching the deployment medians).
	FixStd float64
	// MaxSpeed clamps velocity estimates (default 1.5 m/s).
	MaxSpeed float64
}

// GroupTracker fuses successive localization rounds into per-diver
// position/velocity tracks without continuous acoustic transmission.
type GroupTracker struct {
	inner *track.GroupTracker
}

// NewGroupTracker builds a tracker for a dive group.
func NewGroupTracker(cfg TrackerConfig) *GroupTracker {
	return &GroupTracker{inner: track.NewGroupTracker(track.FilterConfig{
		ProcessAccel: cfg.ProcessAccel,
		FixStd:       cfg.FixStd,
		MaxSpeed:     cfg.MaxSpeed,
	})}
}

// AddRound feeds one Locate() outcome taken at time t (seconds since the
// dive started; rounds must arrive in time order).
func (g *GroupTracker) AddRound(t float64, result *Result) error {
	positions := make([]geom.Vec3, len(result.Positions))
	for _, p := range result.Positions {
		positions[p.Device] = p.Pos
	}
	return g.inner.Fix(t, positions)
}

// PositionsAt extrapolates every diver's track to time t.
func (g *GroupTracker) PositionsAt(t float64) map[int]Vec3 {
	return g.inner.PositionsAt(t)
}

// VelocityOf returns the velocity estimate for a diver (zero vector if
// untracked).
func (g *GroupTracker) VelocityOf(device int) Vec2 {
	tr := g.inner.Tracker(device)
	if tr == nil {
		return Vec2{}
	}
	return tr.Velocity()
}

// UncertaintyOf returns the 1σ position uncertainty of a diver's track in
// metres (+Inf if untracked).
func (g *GroupTracker) UncertaintyOf(device int) float64 {
	tr := g.inner.Tracker(device)
	if tr == nil {
		return math.Inf(1)
	}
	return tr.Uncertainty()
}
