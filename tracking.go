package uwpos

import (
	"fmt"
	"math"

	"uwpos/internal/geom"
	"uwpos/internal/track"
)

// TrackerConfig tunes the continuous-tracking extension (§5 of the paper
// flags sensor-fusion tracking as future work; this is the acoustic-fix
// half: a constant-velocity filter over repeated Locate() rounds).
type TrackerConfig struct {
	// ProcessAccel is the 1σ unmodelled diver acceleration in m/s²
	// (default 0.2 — responsive; use ~0.01 for maximum smoothing of a
	// station-keeping group).
	ProcessAccel float64
	// FixStd is the 1σ accuracy of one localization fix in metres
	// (default 0.8, matching the deployment medians).
	FixStd float64
	// MaxSpeed clamps velocity estimates (default 1.5 m/s).
	MaxSpeed float64
}

// GroupTracker fuses successive localization rounds into per-diver
// position/velocity tracks without continuous acoustic transmission.
type GroupTracker struct {
	inner *track.GroupTracker
	// lastT is the timestamp of the last consumed round; seeded marks
	// whether any round has been consumed yet.
	lastT  float64
	seeded bool
}

// NewGroupTracker builds a tracker for a dive group.
func NewGroupTracker(cfg TrackerConfig) *GroupTracker {
	return &GroupTracker{inner: track.NewGroupTracker(track.FilterConfig{
		ProcessAccel: cfg.ProcessAccel,
		FixStd:       cfg.FixStd,
		MaxSpeed:     cfg.MaxSpeed,
	})}
}

// AddRound feeds one Locate() outcome taken at time t (seconds since the
// dive started; rounds must arrive in time order).
//
// The round is validated before any filter state changes: a timestamp
// behind the previous round returns an error wrapping ErrRoundOutOfOrder,
// and device indices that are out of range, duplicated or missing (the
// result must cover devices 0..N−1 exactly) return one wrapping
// ErrDeviceIndexGap. On error no fix is consumed, so the tracker never
// half-applies a bad round.
func (g *GroupTracker) AddRound(t float64, result *Result) error {
	if result == nil || len(result.Positions) == 0 {
		return ConfigError{Field: "Result", Reason: "no positions in round"}
	}
	if g.seeded && t < g.lastT {
		return fmt.Errorf("%w: round at t=%g s after one at t=%g s", ErrRoundOutOfOrder, t, g.lastT)
	}
	n := len(result.Positions)
	positions := make([]geom.Vec3, n)
	seen := make([]bool, n)
	for _, p := range result.Positions {
		if p.Device < 0 || p.Device >= n {
			return fmt.Errorf("%w: device %d outside 0..%d", ErrDeviceIndexGap, p.Device, n-1)
		}
		if seen[p.Device] {
			return fmt.Errorf("%w: device %d appears twice", ErrDeviceIndexGap, p.Device)
		}
		seen[p.Device] = true
		positions[p.Device] = p.Pos
	}
	if err := g.inner.Fix(t, positions); err != nil {
		return err
	}
	g.lastT, g.seeded = t, true
	return nil
}

// PositionsAt extrapolates every diver's track to time t.
func (g *GroupTracker) PositionsAt(t float64) map[int]Vec3 {
	return g.inner.PositionsAt(t)
}

// VelocityOf returns the velocity estimate for a diver (zero vector if
// untracked).
func (g *GroupTracker) VelocityOf(device int) Vec2 {
	tr := g.inner.Tracker(device)
	if tr == nil {
		return Vec2{}
	}
	return tr.Velocity()
}

// UncertaintyOf returns the 1σ position uncertainty of a diver's track in
// metres (+Inf if untracked).
func (g *GroupTracker) UncertaintyOf(device int) float64 {
	tr := g.inner.Tracker(device)
	if tr == nil {
		return math.Inf(1)
	}
	return tr.Uncertainty()
}
