// Package uwpos is an anchor-free underwater acoustic 3D positioning
// system for smart devices — a from-scratch Go reproduction of
// "Underwater 3D positioning on smart devices" (Chen, Chan, Gollakota,
// ACM SIGCOMM 2023).
//
// A dive group of N waterproof phones/watches runs a leader-initiated
// distributed timestamp protocol over 1–5 kHz acoustics. Pairwise
// distances fall out of two-way timestamp arithmetic; a weighted-SMACOF
// topology solve with rigidity-gated outlier rejection turns them into
// relative 2D positions; onboard depth sensors lift the result to 3D; the
// leader's pointing direction and a dual-microphone left/right vote
// resolve the rotation and mirror ambiguities.
//
// Two entry points:
//
//   - Localize: pure algorithm — bring your own distance matrix, depths
//     and mic signs (e.g. from real hardware) and get 3D positions.
//   - System: full simulated deployment — devices are placed in a
//     physical underwater environment and every stage runs end to end
//     (waveforms → multipath channel → microphone streams with skewed
//     clocks → detection/channel estimation → protocol → FSK reports →
//     localization).
package uwpos

import (
	"context"
	"fmt"

	"uwpos/internal/channel"
	"uwpos/internal/core"
	"uwpos/internal/device"
	"uwpos/internal/geom"
	"uwpos/internal/sim"
)

// Vec3 is a 3D position: x, y horizontal metres, z depth (positive down).
type Vec3 = geom.Vec3

// Vec2 is a horizontal-plane position.
type Vec2 = geom.Vec2

// Environment describes a water body. Use one of the presets or build a
// custom one.
type Environment = channel.Environment

// Preset environments from the paper's evaluation sites (Fig. 10).
var (
	Pool      = channel.Pool
	Dock      = channel.Dock
	Viewpoint = channel.Viewpoint
	Boathouse = channel.Boathouse
)

// EnvironmentByName resolves "pool", "dock", "viewpoint" or "boathouse".
func EnvironmentByName(name string) (*Environment, error) { return channel.ByName(name) }

// DeviceModel describes a phone/watch's acoustic hardware.
type DeviceModel = device.Model

// Device model catalog.
var (
	GalaxyS9   = device.GalaxyS9
	Pixel      = device.Pixel
	OnePlus    = device.OnePlus
	WatchUltra = device.WatchUltra
)

// Input is a set of measurements for pure-algorithm localization:
// the leader is device 0 and points at device 1.
type Input struct {
	// Distances is the N×N matrix of measured 3D pairwise distances (m).
	Distances [][]float64
	// Weights marks link availability: 0 = missing, >0 = measured.
	Weights [][]float64
	// Depths are per-device sensor depths (m).
	Depths []float64
	// MicSigns are the leader's dual-microphone side observations:
	// +1 if the right-of-pointing mic heard device i first, −1 for the
	// left, 0 unknown. May be nil (flip then stays unresolved).
	MicSigns []int
	// PointingBearing is the world bearing (rad) the leader faces.
	PointingBearing float64
}

// Position is one device's localization output.
type Position struct {
	Device int
	Pos    Vec3
}

// Result is the localization outcome.
type Result struct {
	// Positions are leader-relative 3D positions; index 0 is the leader.
	Positions []Position
	// ResidualStress is the normalized per-link RMS residual (m); values
	// above ~1.5 m indicate unresolved outliers.
	ResidualStress float64
	// DroppedLinks lists link pairs rejected as outliers.
	DroppedLinks [][2]int
}

// Localize runs projection → topology estimation with outlier detection →
// ambiguity resolution on caller-provided measurements (§2.1 of the
// paper). Device 0 must be the leader, device 1 the pointed diver.
//
// ctx bounds the solve: the outlier search (Algorithm 1) re-solves the
// topology once per candidate drop subset and honours cancellation between
// solves, so a server can put a deadline on even adversarial inputs.
func Localize(ctx context.Context, in Input) (*Result, error) {
	cr, err := core.Localize(ctx, core.Input{
		D:               in.Distances,
		W:               in.Weights,
		Depths:          in.Depths,
		MicSigns:        in.MicSigns,
		PointingBearing: in.PointingBearing,
	}, core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	out := &Result{ResidualStress: cr.NormStress}
	for i, p := range cr.Positions {
		out.Positions = append(out.Positions, Position{Device: i, Pos: p})
	}
	for _, e := range cr.Dropped {
		out.DroppedLinks = append(out.DroppedLinks, [2]int{e.Low, e.High})
	}
	return out, nil
}

// Diver places one simulated device.
type Diver struct {
	Pos   Vec3
	Model *DeviceModel // nil = Galaxy S9
	// Velocity, if non-zero, moves the diver linearly during the round.
	Velocity Vec3
	// WatchGauge selects the dive-computer depth sensor instead of the
	// phone barometer.
	WatchGauge bool
}

// SystemConfig assembles a simulated deployment. Divers[0] is the leader;
// Divers[1] is the diver the leader points toward.
type SystemConfig struct {
	Env    *Environment
	Divers []Diver
	// Seed drives all simulation randomness (default 1).
	Seed int64
	// PointingErrorRad perturbs the leader's aim (ε_θ; the Fig. 16 study
	// measured ≈5° ≈ 0.087 rad for human divers).
	PointingErrorRad float64
	// OccludedLinks lists device pairs whose direct acoustic path is
	// blocked (outlier-producing, as in Fig. 19a).
	OccludedLinks [][2]int
	// DroppedLinks lists device pairs that cannot hear each other at all.
	DroppedLinks [][2]int
	// LosslessReports bypasses the FSK report-back compression (for
	// ablation; default false = full §2.4 communication system).
	LosslessReports bool
}

// System is a ready-to-run simulated deployment.
type System struct {
	cfg     SystemConfig
	network *sim.Network
	bearing float64
}

// NewSystem validates the configuration and builds the network.
func NewSystem(cfg SystemConfig) (*System, error) {
	if cfg.Env == nil {
		return nil, ConfigError{Field: "Env", Reason: "nil environment"}
	}
	if len(cfg.Divers) < 3 {
		return nil, fmt.Errorf("%w (got %d); with two, use RangeBetween", ErrTooFewDivers, len(cfg.Divers))
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	specs := make([]sim.DeviceSpec, len(cfg.Divers))
	for i, d := range cfg.Divers {
		m := d.Model
		if m == nil {
			m = device.GalaxyS9()
		}
		specs[i] = sim.DeviceSpec{Model: m, Pos: d.Pos, WatchGauge: d.WatchGauge}
		if (d.Velocity != Vec3{}) {
			specs[i].Traj = sim.Linear(d.Pos, d.Velocity)
		}
	}
	orient, bearing := sim.LeaderOrientation(cfg.Divers[0].Pos, cfg.Divers[1].Pos, cfg.PointingErrorRad)
	specs[0].Orient = orient
	nwCfg := sim.Config{
		Env:               cfg.Env,
		Devices:           specs,
		Seed:              cfg.Seed,
		DisableReportBack: cfg.LosslessReports,
	}
	for _, p := range cfg.OccludedLinks {
		nwCfg.Faults = append(nwCfg.Faults, sim.LinkFault{A: p[0], B: p[1], DirectAtt: 0.03})
	}
	for _, p := range cfg.DroppedLinks {
		nwCfg.Faults = append(nwCfg.Faults, sim.LinkFault{A: p[0], B: p[1], Drop: true})
	}
	nw, err := sim.NewNetwork(nwCfg)
	if err != nil {
		return nil, err
	}
	return &System{cfg: cfg, network: nw, bearing: bearing}, nil
}

// RoundOutcome reports one full protocol round of a simulated system.
type RoundOutcome struct {
	Result *Result
	// Distances and Weights are the leader's pairwise estimates.
	Distances, Weights [][]float64
	// LatencySec is the observed protocol round time.
	LatencySec float64
	// Err2D/Err3D are per-device errors vs ground truth (sim-only).
	Err2D, Err3D []float64
}

// Locate runs one complete round: protocol, acoustics, reports and
// localization.
//
// ctx carries the round's deadline and cancellation down into the
// simulated protocol execution: the round checks it at stage boundaries
// (calibration, per-device receiver processing, report decoding, topology
// solves), so a cancelled or expired context aborts within one device's
// processing step and Locate returns the context's error. Concurrent
// Locate calls on one System are not safe — the underlying network owns
// mutable per-round state; serialize per System (the service layer does).
func (s *System) Locate(ctx context.Context) (*RoundOutcome, error) {
	round, err := s.network.RunRound(ctx)
	if err != nil {
		return nil, err
	}
	loc, err := s.network.LocalizeRound(ctx, round, s.bearing, core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	res := &Result{ResidualStress: loc.Core.NormStress}
	for i, p := range loc.Core.Positions {
		res.Positions = append(res.Positions, Position{Device: i, Pos: p})
	}
	for _, e := range loc.Core.Dropped {
		res.DroppedLinks = append(res.DroppedLinks, [2]int{e.Low, e.High})
	}
	return &RoundOutcome{
		Result:     res,
		Distances:  round.D,
		Weights:    round.W,
		LatencySec: round.Latency,
		Err2D:      loc.Err2D,
		Err3D:      loc.Err3D,
	}, nil
}
