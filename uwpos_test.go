package uwpos

import (
	"context"
	"math"
	"testing"
)

func TestLocalizePureAlgorithm(t *testing.T) {
	// Hand-built exact scenario: leader at origin pointing +x at device 1.
	truth := []Vec3{
		{X: 0, Y: 0, Z: 2},
		{X: 8, Y: 0, Z: 3},
		{X: 14, Y: -6, Z: 1},
		{X: 10, Y: 9, Z: 4},
	}
	n := len(truth)
	in := Input{
		Distances: make([][]float64, n),
		Weights:   make([][]float64, n),
		Depths:    make([]float64, n),
		MicSigns:  make([]int, n),
	}
	for i := range truth {
		in.Distances[i] = make([]float64, n)
		in.Weights[i] = make([]float64, n)
		in.Depths[i] = truth[i].Z
		for j := range truth {
			if i != j {
				in.Distances[i][j] = truth[i].Dist(truth[j])
				in.Weights[i][j] = 1
			}
		}
	}
	in.MicSigns[2] = 1  // right of the +x pointing line (y < 0)
	in.MicSigns[3] = -1 // left
	res, err := Localize(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if res.ResidualStress > 1e-4 {
		t.Errorf("stress %g", res.ResidualStress)
	}
	for i, p := range res.Positions {
		want := truth[i].Sub(truth[0])
		want.Z = truth[i].Z
		if e := p.Pos.Sub(want).Norm(); e > 1e-3 {
			t.Errorf("device %d: %+v vs %+v", i, p.Pos, want)
		}
	}
}

func TestLocalizeErrors(t *testing.T) {
	if _, err := Localize(context.Background(), Input{}); err == nil {
		t.Error("empty input should error")
	}
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(SystemConfig{}); err == nil {
		t.Error("nil env should fail")
	}
	if _, err := NewSystem(SystemConfig{Env: Dock(), Divers: []Diver{{}, {}}}); err == nil {
		t.Error("2 divers should fail")
	}
}

func TestEnvironmentByName(t *testing.T) {
	for _, name := range []string{"pool", "dock", "viewpoint", "boathouse"} {
		env, err := EnvironmentByName(name)
		if err != nil || env == nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := EnvironmentByName("mariana"); err == nil {
		t.Error("unknown env should fail")
	}
}

func TestRangeBetween(t *testing.T) {
	out, err := RangeBetween(context.Background(), RangeConfig{Env: Dock(), SeparationM: 15, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.TrueM-15) > 1e-9 {
		t.Errorf("true distance %g", out.TrueM)
	}
	if math.Abs(out.EstimatedM-out.TrueM) > 1.2 {
		t.Errorf("ranging error %.2f m", math.Abs(out.EstimatedM-out.TrueM))
	}
}

func TestRangeBetweenPositionalCompat(t *testing.T) {
	// The deprecated wrapper and the context API must agree exactly: same
	// scenario build, same RNG consumption, same estimate.
	est, tru, err := RangeBetweenPositional(Dock(), 15, 2.5, 2.5, 9)
	if err != nil {
		t.Fatal(err)
	}
	out, err := RangeBetween(context.Background(), RangeConfig{Env: Dock(), SeparationM: 15, DepthAM: 2.5, DepthBM: 2.5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if est != out.EstimatedM || tru != out.TrueM {
		t.Errorf("wrapper (%g, %g) != context API (%g, %g)", est, tru, out.EstimatedM, out.TrueM)
	}
}

func TestSystemLocateEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full system round is expensive")
	}
	sys, err := NewSystem(SystemConfig{
		Env: Dock(),
		Divers: []Diver{
			{Pos: Vec3{X: 0, Y: 0, Z: 2}},
			{Pos: Vec3{X: 6, Y: 1.5, Z: 2.5}},
			{Pos: Vec3{X: 13, Y: -5, Z: 1.5}},
			{Pos: Vec3{X: 10, Y: 8, Z: 3.5}},
			{Pos: Vec3{X: 20, Y: 2, Z: 2.5}},
		},
		Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := sys.Locate(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Result.Positions) != 5 {
		t.Fatalf("%d positions", len(out.Result.Positions))
	}
	for i, e := range out.Err2D {
		if e > 3 {
			t.Errorf("device %d 2D error %.2f m", i, e)
		}
	}
	if out.LatencySec < 1.4 || out.LatencySec > 2.4 {
		t.Errorf("latency %.2f s", out.LatencySec)
	}
}

func TestGroupTrackerPublicAPI(t *testing.T) {
	g := NewGroupTracker(TrackerConfig{ProcessAccel: 0.01})
	res := &Result{Positions: []Position{
		{Device: 0, Pos: Vec3{X: 0, Y: 0, Z: 2}},
		{Device: 1, Pos: Vec3{X: 5, Y: 1, Z: 3}},
		{Device: 2, Pos: Vec3{X: 10, Y: -2, Z: 1}},
	}}
	for k := 0; k < 5; k++ {
		if err := g.AddRound(float64(k)*5, res); err != nil {
			t.Fatal(err)
		}
	}
	pos := g.PositionsAt(25)
	if len(pos) != 3 {
		t.Fatalf("tracked %d", len(pos))
	}
	if pos[1].Sub(Vec3{X: 5, Y: 1, Z: 3}).Norm() > 0.2 {
		t.Errorf("static track drifted: %+v", pos[1])
	}
	if v := g.VelocityOf(1).Norm(); v > 0.1 {
		t.Errorf("phantom velocity %.2f", v)
	}
	if g.VelocityOf(9) != (Vec2{}) {
		t.Error("untracked velocity should be zero")
	}
	if !math.IsInf(g.UncertaintyOf(9), 1) {
		t.Error("untracked uncertainty should be +Inf")
	}
	if g.UncertaintyOf(1) > 1 {
		t.Errorf("uncertainty %.2f", g.UncertaintyOf(1))
	}
}
